package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String()
}

func TestListAxes(t *testing.T) {
	out := capture(t, "-list-axes")
	for _, want := range []string{"datausers", "speed", "scheduler", "objective", "direction"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-axes missing %q:\n%s", want, out)
		}
	}
}

func TestListGrids(t *testing.T) {
	out := capture(t, "-list-grids")
	if !strings.Contains(out, "paper-load-sweep") || !strings.Contains(out, "points=60") {
		t.Errorf("-list-grids output:\n%s", out)
	}
}

func TestPointsDryRun(t *testing.T) {
	out := capture(t, "-preset", "smoke", "-axis", "datausers=2,4", "-reps", "2", "-points")
	if !strings.Contains(out, "datausers=2") || !strings.Contains(out, "2 points x 2 reps = 4 runs") {
		t.Errorf("-points output:\n%s", out)
	}
	// The named grids dry-run too, without running a single simulation.
	out = capture(t, "-grid", "paper-load-sweep", "-points")
	if got := strings.Count(out, "\n"); got != 61 { // 60 points + summary
		t.Errorf("paper-load-sweep dry run printed %d lines:\n%s", got, out)
	}
}

// TestSweepCSVDeterministicAcrossParallel is the acceptance check: the same
// grid must emit byte-identical CSV for -parallel 1 and -parallel 8.
func TestSweepCSVDeterministicAcrossParallel(t *testing.T) {
	base := []string{"-preset", "smoke", "-axis", "datausers=2,4", "-reps", "2"}
	serial := capture(t, append(base, "-parallel", "1")...)
	parallel := capture(t, append(base, "-parallel", "8")...)
	if serial != parallel {
		t.Errorf("CSV depends on -parallel:\n--- 1\n%s--- 8\n%s", serial, parallel)
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "datausers,reps,admission_prob") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}

func TestJSONFormat(t *testing.T) {
	out := capture(t, "-preset", "smoke", "-axis", "datausers=2", "-format", "json")
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Rows) != 1 || doc.Rows[0]["datausers"] != "2" {
		t.Errorf("unexpected JSON rows: %+v", doc.Rows)
	}
	if doc.Columns[0] != "datausers" {
		t.Errorf("unexpected JSON columns: %v", doc.Columns)
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.csv")
	capture(t, "-preset", "smoke", "-axis", "datausers=2", "-o", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "admission_prob") {
		t.Errorf("written file missing header:\n%s", data)
	}
}

func TestSeedOverrideChangesResults(t *testing.T) {
	base := []string{"-preset", "smoke", "-axis", "datausers=4"}
	a := capture(t, append(base, "-seed", "7")...)
	b := capture(t, append(base, "-seed", "7")...)
	if a != b {
		t.Error("same -seed should reproduce the CSV")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "no-such-preset"},
		{"-axis", "nope=1,2"},
		{"-axis", "datausers=-3"},
		{"-grid", "no-such-grid"},
		{"-grid", "paper-load-sweep", "-axis", "datausers=2"},
		{"-grid", "paper-load-sweep", "-preset", "smoke"},
		{"-axis", "datausers=2", "-axis", "datausers=4"},
		{"-format", "xml"},
		{"-preset", "smoke", "-config", "anything.json"}, // exclusive pair
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestSweepSnapshotModeDeterministicAcrossFrameParallel is the frame-mode
// determinism gate the CI job scripts: snapshot-mode sweeps must emit
// byte-identical CSV whatever -frameparallel is.
func TestSweepSnapshotModeDeterministicAcrossFrameParallel(t *testing.T) {
	base := []string{"-preset", "smoke", "-axis", "datausers=2,4", "-reps", "2", "-framemode", "snapshot"}
	inline := capture(t, append(base, "-frameparallel", "1")...)
	pooled := capture(t, append(base, "-frameparallel", "8")...)
	if inline != pooled {
		t.Errorf("snapshot CSV depends on -frameparallel:\n--- 1\n%s--- 8\n%s", inline, pooled)
	}
	if !strings.HasPrefix(inline, "datausers,reps,admission_prob") {
		t.Errorf("unexpected CSV header in %q", inline)
	}
}

func TestSweepFrameModeAxisAndFlagValidation(t *testing.T) {
	out := capture(t, "-preset", "smoke", "-axis", "framemode=sequential,snapshot", "-points")
	if !strings.Contains(out, "framemode=sequential") || !strings.Contains(out, "framemode=snapshot") {
		t.Errorf("framemode axis did not expand:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-preset", "smoke", "-framemode", "warp"}, &buf); err == nil {
		t.Error("unknown -framemode should fail")
	}
}

func TestFrameModeFlagConflictsWithFrameModeAxis(t *testing.T) {
	// The flag override runs after axis values are applied, so combining it
	// with a framemode axis would mislabel rows; it must be rejected.
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-preset", "smoke", "-axis", "framemode=sequential,snapshot",
		"-framemode", "snapshot", "-points"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "framemode") {
		t.Errorf("expected a framemode conflict error, got %v", err)
	}
}

func TestSweepTraceFileDeterministicAcrossParallel(t *testing.T) {
	dir := t.TempDir()
	runTrace := func(name string, parallel string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		capture(t, "-preset", "smoke", "-axis", "datausers=2,4", "-reps", "2",
			"-parallel", parallel, "-trace", path, "-trace-every", "50")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	one := runTrace("p1.csv", "1")
	eight := runTrace("p8.csv", "8")
	if one != eight {
		t.Fatal("sweep trace depends on -parallel")
	}
	lines := strings.Split(strings.TrimSuffix(one, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "point,label,frame,") {
		t.Fatalf("unexpected trace header %q", lines[0])
	}
	// Rows arrive in grid order: the point column never decreases, and both
	// points appear.
	last, seen := -1, map[string]bool{}
	for _, line := range lines[1:] {
		cells := strings.SplitN(line, ",", 3)
		p, err := strconv.Atoi(cells[0])
		if err != nil || p < last {
			t.Fatalf("point column out of order at %q", line)
		}
		last = p
		seen[cells[1]] = true
	}
	if !seen["datausers=2"] || !seen["datausers=4"] {
		t.Fatalf("missing point labels, saw %v", seen)
	}
}

// TestSweepFromConfigFile anchors an ad-hoc grid on a JSON scenario instead
// of a preset: the axes expand over the file's configuration, and combining
// the file with a named grid is rejected.
func TestSweepFromConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	content := []byte(`{"Rings": 1, "SimTime": 3, "WarmupTime": 1, "VoiceUsersPerCell": 2}`)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, "-config", path, "-axis", "datausers=2,4")
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("expected header + 2 rows, got %d lines:\n%s", got, out)
	}
	err := run(context.Background(), []string{"-grid", "paper-load-sweep", "-config", path}, &bytes.Buffer{})
	if err == nil {
		t.Error("-grid with -config should conflict")
	}
}

func TestSweepTraceEveryValidation(t *testing.T) {
	err := run(context.Background(), []string{"-preset", "smoke", "-axis", "datausers=2", "-trace-every", "-1"}, os.Stdout)
	if err == nil {
		t.Error("negative -trace-every should fail")
	}
}
