package main

import (
	"strings"
	"testing"
)

func TestParseAveragesRepetitions(t *testing.T) {
	input := `goos: linux
goarch: amd64
BenchmarkFoo-8   	     200	    100 ns/op	  400 B/op	    10 allocs/op
BenchmarkFoo-8   	     200	    300 ns/op	  600 B/op	    20 allocs/op
BenchmarkBar/sub-8 	       2	  50000 ns/op
PASS
ok  	jabasd	0.1s
`
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	foo, ok := got["BenchmarkFoo-8"]
	if !ok {
		t.Fatalf("BenchmarkFoo-8 missing from %v", got)
	}
	if foo.NsPerOp != 200 || foo.BytesPerOp != 500 || foo.AllocsPerOp != 15 || foo.Count != 2 {
		t.Errorf("BenchmarkFoo-8 = %+v, want mean of the two repetitions", foo)
	}
	bar, ok := got["BenchmarkBar/sub-8"]
	if !ok {
		t.Fatalf("BenchmarkBar/sub-8 missing from %v", got)
	}
	if bar.NsPerOp != 50000 || bar.BytesPerOp != 0 || bar.Count != 1 {
		t.Errorf("BenchmarkBar/sub-8 = %+v", bar)
	}
}

func TestParseCollectsCustomMetrics(t *testing.T) {
	input := `BenchmarkRate/metro-8   	       5	 120000000 ns/op	       400.0 frames/sec	 12000000 B/op	   74000 allocs/op
BenchmarkRate/metro-8   	       5	 118000000 ns/op	       420.0 frames/sec	 12000000 B/op	   74000 allocs/op
BenchmarkPlain-8        	     100	      1000 ns/op
`
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	rate, ok := got["BenchmarkRate/metro-8"]
	if !ok {
		t.Fatalf("BenchmarkRate/metro-8 missing from %v", got)
	}
	if rate.NsPerOp != 119000000 || rate.Count != 2 {
		t.Errorf("BenchmarkRate/metro-8 = %+v, want mean of the two repetitions", rate)
	}
	if fps := rate.Extra["frames/sec"]; fps != 410 {
		t.Errorf("frames/sec = %v, want 410 (mean of 400 and 420)", fps)
	}
	if plain := got["BenchmarkPlain-8"]; plain.Extra != nil {
		t.Errorf("BenchmarkPlain-8.Extra = %v, want nil when no custom metrics reported", plain.Extra)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBad-8  200  xyz ns/op\n")); err == nil {
		t.Error("malformed value should error")
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	got, err := parse(strings.NewReader("nothing to see\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty map, got %v", got)
	}
}
