// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON map, so CI can upload the benchmark trajectory as an
// artifact (BENCH_<pr>.json) that future PRs diff against.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-head.txt
//
// The output maps each benchmark name (including the -cpu suffix) to its
// mean ns/op, B/op and allocs/op across the repetitions present in the
// input (`-count N` runs emit one line per repetition). Custom metrics
// emitted via b.ReportMetric — like the frame loop's "frames/sec" — are
// collected under an "extra" map, averaged the same way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// metrics is one benchmark's aggregated result.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Count       int     `json:"count"` // repetitions averaged
	// Extra holds custom b.ReportMetric units (e.g. "frames/sec"), absent
	// when a benchmark reports none.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	agg, err := parse(in)
	if err != nil {
		return err
	}
	if len(agg) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse reads `go test -bench` output and averages the per-repetition lines
// of each benchmark. Lines look like
//
//	BenchmarkName-8   200   326430 ns/op   407120 B/op   3342 allocs/op
//
// where the B/op and allocs/op columns require -benchmem and are optional.
func parse(r io.Reader) (map[string]metrics, error) {
	type sum struct {
		ns, b, allocs float64
		n             int
		extra         map[string]float64
	}
	sums := map[string]*sum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		s := sums[fields[0]]
		if s == nil {
			s = &sum{}
			sums[fields[0]] = s
		}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q for %s", fields[i], fields[0])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.ns += v
				ok = true
			case "B/op":
				s.b += v
			case "allocs/op":
				s.allocs += v
			default:
				if s.extra == nil {
					s.extra = map[string]float64{}
				}
				s.extra[unit] += v
			}
		}
		if !ok {
			return nil, fmt.Errorf("no ns/op column on line %q", sc.Text())
		}
		s.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// json.Marshal sorts map keys, so the output is deterministic as-is.
	out := make(map[string]metrics, len(sums))
	for name, s := range sums {
		m := metrics{
			NsPerOp:     s.ns / float64(s.n),
			BytesPerOp:  s.b / float64(s.n),
			AllocsPerOp: s.allocs / float64(s.n),
			Count:       s.n,
		}
		if s.extra != nil {
			m.Extra = make(map[string]float64, len(s.extra))
			for unit, total := range s.extra {
				m.Extra[unit] = total / float64(s.n)
			}
		}
		out[name] = m
	}
	return out, nil
}
