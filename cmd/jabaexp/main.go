// Command jabaexp regenerates the experiment suite E1-E10 described in
// DESIGN.md / EXPERIMENTS.md and prints every results table. With -out it
// also writes one CSV file per experiment into the given directory.
//
// Usage:
//
//	jabaexp                 # quick scale, all experiments, ASCII tables
//	jabaexp -scale full     # the scale used for the numbers in EXPERIMENTS.md
//	jabaexp -only E1,E3     # subset
//	jabaexp -out results/   # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jabasd/internal/experiments"
	"jabasd/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jabaexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jabaexp", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "experiment scale: quick or full")
		only      = fs.String("only", "", "comma separated experiment ids to run (e.g. E1,E5); empty = all")
		outDir    = fs.String("out", "", "directory to write CSV results into (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	type expDef struct {
		id  string
		run func() (*report.Table, error)
	}
	defs := []expDef{
		{"E1", experiments.E1AdaptivePhyThroughput},
		{"E2", func() (*report.Table, error) { return experiments.E2ModeOccupancy(15, 200_000) }},
		{"E3", func() (*report.Table, error) { return experiments.E3ForwardAdmission(40) }},
		{"E4", func() (*report.Table, error) { return experiments.E4ReverseAdmission(40) }},
		{"E5", func() (*report.Table, error) { return experiments.E5DelayVsLoad(scale) }},
		{"E6", func() (*report.Table, error) { return experiments.E6UserCapacity(scale, 2) }},
		{"E7", func() (*report.Table, error) { return experiments.E7Coverage(scale) }},
		{"E8", func() (*report.Table, error) { return experiments.E8JointDesignAblation(scale) }},
		{"E9", func() (*report.Table, error) { return experiments.E9ObjectiveTradeoff(scale) }},
		{"E10", func() (*report.Table, error) { return experiments.E10MacStates(scale) }},
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	for _, d := range defs {
		if len(wanted) > 0 && !wanted[d.id] {
			continue
		}
		tbl, err := d.run()
		if err != nil {
			return fmt.Errorf("%s: %w", d.id, err)
		}
		fmt.Printf("\n")
		if err := tbl.WriteASCII(os.Stdout); err != nil {
			return err
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, strings.ToLower(d.id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("(written to %s)\n", path)
		}
	}
	return nil
}
