// Command jabaexp regenerates the experiment suite E1-E12 and prints every
// results table. The suite is
// read from the experiments registry (the same one experiments.All runs), so
// the tool and the library can never disagree about what E<n> means. One
// consequence of that unification: the analytic E3/E4 instance counts now
// follow the selected scale (15 at quick, 60 at full) like the library
// always did, instead of the fixed 40 earlier versions of this tool used.
// With -out it also writes one CSV file per experiment into the given
// directory.
//
// Usage:
//
//	jabaexp                 # quick scale, all experiments, ASCII tables
//	jabaexp -scale full     # the scale used for the numbers in EXPERIMENTS.md
//	jabaexp -only E1,E3     # subset (unknown ids are rejected)
//	jabaexp -out results/   # additionally write CSV files
//	jabaexp -parallel 4     # bound the number of concurrently running experiments
//	jabaexp -list           # list the registered experiments and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"jabasd/internal/experiments"
	"jabasd/internal/jobspec"
	"jabasd/internal/report"
)

func main() {
	// SIGINT/SIGTERM cancel the suite: tables already printed (and their
	// CSVs written) stay; running experiments stop at the next frame.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jabaexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jabaexp", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "experiment scale: quick or full")
		only      = fs.String("only", "", "comma separated experiment ids to run (e.g. E1,E5); empty = all")
		outDir    = fs.String("out", "", "directory to write CSV results into (optional)")
		parallel  = fs.Int("parallel", 0, "max experiments running concurrently (0 = GOMAXPROCS)")
		exact     = fs.Bool("exact-vtaoc", false, "run the dynamic experiments on the bit-exact reference physics (exact VTAOC integral, scalar-equivalent channel kernels) instead of the fast SoA path")
		list      = fs.Bool("list", false, "list the registered experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range experiments.Registry() {
			kind := "dynamic"
			if d.Analytic {
				kind = "analytic"
			}
			fmt.Printf("%-4s %-9s %s\n", d.ID, kind, d.Title)
		}
		return nil
	}

	// The flags translate into the shared jobspec.ExperimentsSpec, so the
	// id selection and scale rules match the jabaserve HTTP API exactly.
	spec := jobspec.ExperimentsSpec{Scale: *scaleName, Parallel: *parallel, ExactPHY: *exact}
	if *only != "" {
		spec.Only = strings.Split(*only, ",")
	}
	defs, scale, err := spec.Resolve()
	if err != nil {
		return err
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	// Stream the tables in suite order as they complete, so a failure late in
	// a long run still leaves every earlier table printed and its CSV written.
	return experiments.StreamExperiments(ctx, defs, scale, *parallel, func(i int, tbl *report.Table) error {
		fmt.Printf("\n")
		if err := tbl.WriteASCII(os.Stdout); err != nil {
			return err
		}
		if *outDir == "" {
			return nil
		}
		path := filepath.Join(*outDir, strings.ToLower(defs[i].ID)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(written to %s)\n", path)
		return nil
	})
}
