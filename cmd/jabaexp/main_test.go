package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAnalyticExperimentsOnly(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "E1,E2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-only", "E1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "e1.csv")); err != nil {
		t.Errorf("expected e1.csv to be written: %v", err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunLowercaseIDsAccepted(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "e1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperimentIDRejected(t *testing.T) {
	for _, only := range []string{"E99", "e1x", "E1,nope", ","} {
		err := run(context.Background(), []string{"-only", only})
		if err == nil {
			t.Errorf("-only %s should fail instead of silently running nothing", only)
			continue
		}
		if !strings.Contains(err.Error(), "E1, E2") {
			t.Errorf("-only %s error should list the valid ids, got: %v", only, err)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitParallelBound(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "E1,E2", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}
