package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAnalyticExperimentsOnly(t *testing.T) {
	if err := run([]string{"-only", "E1,E2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-only", "E1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "e1.csv")); err != nil {
		t.Errorf("expected e1.csv to be written: %v", err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunLowercaseIDsAccepted(t *testing.T) {
	if err := run([]string{"-only", "e1"}); err != nil {
		t.Fatal(err)
	}
}
