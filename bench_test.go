// Package jabasd_bench contains the benchmark harness that regenerates every
// experiment of the evaluation (the registered suite E1-E12):
// one BenchmarkE<n>… target per experiment, plus micro-benchmarks for the
// hot paths (per-frame scheduling, the LP/ILP solvers and the dynamic
// simulator). Benchmarks run the quick experiment scale so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/jabaexp -scale full
// produces the full-scale numbers recorded in EXPERIMENTS.md.
package jabasd_bench

import (
	"context"
	"math"
	"testing"

	"jabasd/internal/core"
	"jabasd/internal/experiments"
	"jabasd/internal/ilp"
	"jabasd/internal/load"
	"jabasd/internal/lp"
	"jabasd/internal/measurement"
	"jabasd/internal/rng"
	"jabasd/internal/sim"
	"jabasd/internal/vtaoc"
)

// benchScale is a reduced scale so that the full benchmark suite stays fast.
var benchScale = experiments.Scale{
	Name:         "bench",
	SimTime:      6,
	WarmupTime:   1,
	Rings:        1,
	Replications: 1,
	LoadPoints:   []int{4, 10},
}

// ---------------------------------------------------------------------------
// Experiment benchmarks (E1-E12): one per table/figure of the evaluation.
// ---------------------------------------------------------------------------

func BenchmarkE1AdaptivePhyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1AdaptivePhyThroughput(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ModeOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2ModeOccupancy(15, 50_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ForwardAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3ForwardAdmission(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4ReverseAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4ReverseAdmission(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5DelayVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5DelayVsLoad(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6UserCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6UserCapacity(context.Background(), benchScale, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Coverage(b *testing.B) {
	small := benchScale
	small.LoadPoints = []int{4}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7Coverage(context.Background(), small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8JointDesignAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8JointDesignAblation(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9ObjectiveTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9ObjectiveTradeoff(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10MacStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10MacStates(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11WarmupConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E11WarmupConvergence(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12LoadStepResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12LoadStepResponse(context.Background(), benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices called out in DESIGN.md.
// ---------------------------------------------------------------------------

// BenchmarkAblationExactVsGreedyScheduler compares the per-frame cost of the
// exact branch-and-bound JABA-SD against the greedy variant on a realistic
// frame (8 concurrent requests, 3 binding cells). Both schedulers run warm
// (owned solver arenas and scratch), so the steady-state numbers are what
// the frame loop pays.
func BenchmarkAblationExactVsGreedyScheduler(b *testing.B) {
	p := syntheticProblem(8, 3, 12345)
	b.Run("exact", func(b *testing.B) {
		s := core.NewJABASD()
		s.GreedyFallbackSize = 0 // force exact
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Schedule(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		s := &core.GreedyJABASD{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Schedule(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fcfs", func(b *testing.B) {
		s := &core.FCFS{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Schedule(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptiveVsFixedPHY measures the cost of the adaptive
// throughput computation against the fixed-rate baseline.
func BenchmarkAblationAdaptiveVsFixedPHY(b *testing.B) {
	coder := vtaoc.MustNew(vtaoc.DefaultConfig())
	fixed, err := vtaoc.NewFixedRate(coder, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("adaptive", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += coder.AverageThroughput(float64(i%40) - 5)
		}
		_ = s
	})
	b.Run("fixed", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += fixed.AverageThroughput(float64(i%40) - 5)
		}
		_ = s
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates.
// ---------------------------------------------------------------------------

// benchLP builds the random LP instance shared by the simplex benchmarks.
func benchLP() lp.Problem {
	src := rng.New(3)
	n, m := 12, 10
	p := lp.Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	for j := 0; j < n; j++ {
		p.C[j] = src.Uniform(0, 2)
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p.A[i][j] = src.Uniform(0, 1)
		}
		p.B[i] = src.Uniform(3, 10)
	}
	return p
}

func BenchmarkSimplexSolve(b *testing.B) {
	p := benchLP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexSolverWarm measures the reusable solver's steady state:
// the same instance solved on warm arenas, the shape of the inner loop of
// branch and bound. The delta against BenchmarkSimplexSolve is the cost of
// the per-call tableau allocation the Solver removes.
func BenchmarkSimplexSolverWarm(b *testing.B) {
	p := benchLP()
	var s lp.Solver
	if _, err := s.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchILP builds the random integer program shared by the ILP benchmarks.
func benchILP() ilp.Problem {
	src := rng.New(5)
	n, m := 8, 4
	p := ilp.Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m), Upper: make([]int, n)}
	for j := 0; j < n; j++ {
		p.C[j] = src.Uniform(0, 2)
		p.Upper[j] = 8
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p.A[i][j] = src.Uniform(0, 1)
		}
		p.B[i] = src.Uniform(4, 12)
	}
	return p
}

func BenchmarkBranchAndBound(b *testing.B) {
	p := benchILP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ilp.BranchAndBound(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILPSolverWarm measures the production branch-and-bound path: a
// warm ilp.Solver (pooled nodes, shared relaxation, greedy-seeded incumbent)
// on the same instance as BenchmarkBranchAndBound.
func BenchmarkILPSolverWarm(b *testing.B) {
	p := benchILP()
	var s ilp.Solver
	if _, err := s.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVTAOCAverageThroughput(b *testing.B) {
	coder := vtaoc.MustNew(vtaoc.DefaultConfig())
	b.ReportAllocs()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += coder.AverageThroughput(float64(i%35) - 5)
	}
	_ = s
}

// BenchmarkVTAOCAverageThroughputTabulated measures the same sweep through
// the opt-in lookup table (linear interpolation on the documented CSI grid).
func BenchmarkVTAOCAverageThroughputTabulated(b *testing.B) {
	coder := vtaoc.MustNew(vtaoc.DefaultConfig())
	coder.Tabulate()
	b.ReportAllocs()
	b.ResetTimer()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += coder.AverageThroughput(float64(i%35) - 5)
	}
	_ = s
}

func BenchmarkForwardRegion(b *testing.B) {
	src := rng.New(9)
	nd := 8
	reqs := make([]measurement.ForwardRequest, nd)
	for j := 0; j < nd; j++ {
		reqs[j] = measurement.ForwardRequest{
			UserID:   j,
			FCHPower: load.FromMap(map[int]float64{j % 3: src.Uniform(0.1, 1), (j + 1) % 3: src.Uniform(0.1, 1)}),
			Alpha:    1,
		}
	}
	state := measurement.ForwardState{CurrentLoad: []float64{10, 12, 8}, MaxLoad: 20, GammaS: 1.25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := measurement.ForwardRegion(state, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicSimulationFrameRate measures whole-replication cost and
// reports the achieved frame rate ("frames/sec") for two presets: the quick
// unit-test scenario and the contended metro scenario (37 small cells, 30
// data + 12 voice users per cell) whose frame rate is the headline number
// of the batched-physics optimisation.
func BenchmarkDynamicSimulationFrameRate(b *testing.B) {
	quick := sim.DefaultConfig()
	quick.Rings = 1
	quick.SimTime = 4
	quick.WarmupTime = 1
	quick.DataUsersPerCell = 6
	quick.VoiceUsersPerCell = 4

	metro := sim.DefaultConfig()
	metro.Rings = 3 // 37 cells
	metro.CellRadius = 600
	metro.DataUsersPerCell = 30
	metro.VoiceUsersPerCell = 12
	metro.SimTime = 1
	metro.WarmupTime = 0.25

	for _, sc := range []struct {
		name string
		cfg  sim.Config
	}{{"quick", quick}, {"metro", metro}} {
		b.Run(sc.name, func(b *testing.B) {
			cfg := sc.cfg
			frames := int(math.Ceil(cfg.SimTime / cfg.FrameLength))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := sim.Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(frames*b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}

func BenchmarkParallelReplications(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 3
	cfg.WarmupTime = 1
	cfg.DataUsersPerCell = 4
	cfg.VoiceUsersPerCell = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunReplications(context.Background(), cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticProblem builds a reproducible admission problem for benchmarks.
func syntheticProblem(nd, cells int, seed uint64) core.Problem {
	src := rng.New(seed)
	reqs := make([]core.Request, nd)
	fwd := make([]measurement.ForwardRequest, nd)
	for j := 0; j < nd; j++ {
		reqs[j] = core.Request{
			UserID:        j,
			SizeBits:      src.Uniform(1e5, 2e6),
			WaitingTime:   src.Uniform(0, 12),
			AvgThroughput: src.Uniform(0.05, 1),
			MaxRatio:      16,
		}
		powers := map[int]float64{}
		powers[src.Intn(cells)] = src.Uniform(0.1, 1)
		powers[src.Intn(cells)] = src.Uniform(0.1, 1)
		fwd[j] = measurement.ForwardRequest{UserID: j, FCHPower: load.FromMap(powers), Alpha: 1}
	}
	cellLoad := make([]float64, cells)
	for k := range cellLoad {
		cellLoad[k] = src.Uniform(5, 15)
	}
	region, err := measurement.ForwardRegion(measurement.ForwardState{
		CurrentLoad: cellLoad, MaxLoad: 20, GammaS: 1.25,
	}, fwd)
	if err != nil {
		panic(err)
	}
	return core.Problem{
		Requests:  reqs,
		Region:    region,
		MaxRatio:  16,
		Objective: core.DefaultObjective(),
	}
}

// BenchmarkSnapshotFrameAdmission measures the tentpole of the snapshot
// frame mode: the whole frame loop (measurement, admission, service) on the
// contended scenarios, sequential vs snapshot at 1 and 8 solve workers.
// snapshot-1 vs sequential isolates the semantic change (it should be cost
// neutral); snapshot-8 vs snapshot-1 is the multicore win from fanning the
// per-cell region builds and ILP solves (plus the per-user measurement
// updates) out over the pool.
func BenchmarkSnapshotFrameAdmission(b *testing.B) {
	heavy := sim.DefaultConfig()
	heavy.SimTime = 2
	heavy.WarmupTime = 0.5
	heavy.DataUsersPerCell = 20 // the heavy-load preset's density, 19 cells

	metro := sim.DefaultConfig()
	metro.Rings = 3 // 37 cells
	metro.CellRadius = 600
	metro.DataUsersPerCell = 30
	metro.VoiceUsersPerCell = 12
	metro.SimTime = 1
	metro.WarmupTime = 0.25

	scenarios := []struct {
		name string
		cfg  sim.Config
	}{{"heavy-load", heavy}, {"metro", metro}}
	for _, sc := range scenarios {
		if testing.Short() && sc.name == "metro" {
			continue
		}
		modes := []struct {
			name     string
			mode     sim.FrameMode
			parallel int
		}{
			{"sequential", sim.FrameSequential, 0},
			{"snapshot-1", sim.FrameSnapshot, 1},
			{"snapshot-8", sim.FrameSnapshot, 8},
		}
		for _, md := range modes {
			b.Run(sc.name+"/"+md.name, func(b *testing.B) {
				cfg := sc.cfg
				cfg.FrameMode = md.mode
				cfg.FrameParallel = md.parallel
				frames := int(math.Ceil(cfg.SimTime / cfg.FrameLength))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg.Seed = uint64(i + 1)
					if _, err := sim.Run(context.Background(), cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(frames*b.N)/b.Elapsed().Seconds(), "frames/sec")
			})
		}
	}
}
