package jabasd_bench

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestNoTrackedBinaries fails when a compiled binary is tracked by git.
// Stray `go build` outputs (the jabasim ELF, *.test binaries) have been
// committed and removed twice already; this gate makes the mistake fail CI
// instead of recurring. A file counts as a binary when its first bytes are
// an executable magic number (ELF, Mach-O, PE) — extension lists rot,
// magic numbers do not.
func TestNoTrackedBinaries(t *testing.T) {
	out, err := exec.Command("git", "ls-files").Output()
	if err != nil {
		t.Skipf("git ls-files unavailable: %v", err)
	}
	var offenders []string
	for _, name := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if name == "" {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			continue // deleted in the working tree; nothing to inspect
		}
		head := make([]byte, 4)
		n, _ := f.Read(head)
		f.Close()
		if isBinaryMagic(head[:n]) {
			offenders = append(offenders, name)
		}
	}
	if len(offenders) > 0 {
		t.Errorf("tracked compiled binaries (git rm them; build outputs belong in .gitignore): %v", offenders)
	}
}

// isBinaryMagic reports whether the first bytes of a file identify a
// compiled executable: ELF (linux), Mach-O 32/64/fat (darwin), or MZ (pe).
func isBinaryMagic(head []byte) bool {
	if bytes.HasPrefix(head, []byte("\x7fELF")) {
		return true
	}
	machO := [][]byte{
		{0xfe, 0xed, 0xfa, 0xce}, {0xfe, 0xed, 0xfa, 0xcf},
		{0xcf, 0xfa, 0xed, 0xfe}, {0xce, 0xfa, 0xed, 0xfe},
		{0xca, 0xfe, 0xba, 0xbe},
	}
	for _, m := range machO {
		if bytes.Equal(head, m) {
			return true
		}
	}
	return bytes.HasPrefix(head, []byte("MZ"))
}
