module jabasd

go 1.23
