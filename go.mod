module jabasd

go 1.24
