package jabasd_bench

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestMarkdownLinks is the repository's link checker: every relative link
// in a committed markdown file must point at a file or directory that
// exists. External (http/https/mailto) links and pure in-page anchors are
// skipped — the gate is about repo-internal references rotting when files
// move, not about the internet being up. CI runs this via the normal test
// suite and as a named step.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found; the checker is walking the wrong root")
	}

	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", md, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked; README should link at least docs/PAPER_MAPPING.md")
	}
}
